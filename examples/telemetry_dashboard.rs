//! Live telemetry for the whole selection stack, end to end.
//!
//! ```text
//! cargo run --release --example telemetry_dashboard
//! ```
//!
//! Builds an engine with the full observability pipeline attached — a
//! metrics sink, a bounded JSONL audit stream, and an in-memory sink —
//! drives both a single-owner allocation context and a concurrent runtime
//! site through adaptation (including a rollback provoked by an inverted
//! model), then renders a dashboard:
//!
//! * the engine health summary ([`Switch::health`]),
//! * the per-site decision audit ([`Switch::explain`]) with every
//!   candidate's estimated cost and the winning margin,
//! * the Prometheus text exposition (validated in-process — this example
//!   is CI's telemetry check and exits nonzero on any inconsistency),
//! * the JSON snapshot and the JSONL audit trail on disk.
//!
//! [`Switch::health`]: collection_switch::core::Switch::health
//! [`Switch::explain`]: collection_switch::core::Switch::explain

use std::sync::Arc;

use collection_switch::core::Models;
use collection_switch::model::{
    CostDimension, PerformanceModel, Polynomial, VariantCostModel,
};
use collection_switch::profile::OpKind;
use collection_switch::prelude::*;

fn flat_list_model(costs: &[(ListKind, f64)]) -> PerformanceModel<ListKind> {
    let mut model = PerformanceModel::new();
    for &(kind, cost) in costs {
        let mut variant = VariantCostModel::new();
        for op in OpKind::ALL {
            variant.set_op_cost(CostDimension::Time, op, Polynomial::constant(cost));
        }
        model.insert_variant(kind, variant);
    }
    model
}

fn scan_round(ctx: &ListContext<i64>) {
    for _ in 0..60 {
        let mut list = ctx.create_list();
        for v in 0..1024 {
            list.push(v);
        }
        for v in 0..1024 {
            assert!(list.contains(&v));
        }
    }
}

fn fail(why: &str) -> ! {
    eprintln!("telemetry_dashboard: FAILED: {why}");
    std::process::exit(1);
}

fn main() {
    // -- Wire the pipeline -------------------------------------------------
    let registry = MetricsRegistry::new();
    let audit_path = std::env::temp_dir().join("cs_telemetry_dashboard.audit.jsonl");
    let jsonl = Arc::new(
        JsonlSink::create(&audit_path, 10_000).unwrap_or_else(|e| fail(&e.to_string())),
    );
    let vec_sink = Arc::new(VecSink::default());

    // An inverted list model provokes a switch that verification will roll
    // back — so the dashboard below shows the full decision lifecycle, not
    // just the happy path.
    let models = Models {
        list: flat_list_model(&[
            (ListKind::Array, 100.0),
            (ListKind::Linked, 1.0),
            (ListKind::HashArray, 10_000.0),
            (ListKind::Adaptive, 10_000.0),
        ]),
        ..Default::default()
    };
    let engine = Switch::builder()
        .models(models)
        .event_sink(Arc::new(MetricsSink::new(registry.clone())))
        .event_sink(jsonl.clone())
        .event_sink(vec_sink.clone())
        .build();
    let runtime = Runtime::new(engine.clone());

    // -- Drive adaptation --------------------------------------------------
    // A single-owner list site under the inverted model: switch, regress,
    // roll back, quarantine.
    let list_site = engine.named_list_context::<i64>(ListKind::Array, "dashboard/list");
    for _ in 0..3 {
        scan_round(&list_site);
        engine.analyze_now();
    }

    // A concurrent map site under the (default) honest map model.
    let map = runtime.named_concurrent_map::<u64, u64>(MapKind::Chained, "dashboard/map");
    for i in 0..5_000u64 {
        map.insert(i % 512, i);
        map.get(&(i % 512));
    }
    runtime.flush_thread();
    runtime.analyze_now();

    // -- Render the dashboard ----------------------------------------------
    println!("== engine health ==");
    let health = engine.health();
    println!("{health}\n");

    println!("== decision audit: dashboard/list ==");
    match engine.explain(list_site.id()) {
        Some(explanation) => {
            println!("{explanation}");
            for candidate in &explanation.candidates {
                let status = match candidate.excluded {
                    Some(reason) => format!("excluded ({reason})"),
                    None if candidate.satisfied => "satisfied".to_owned(),
                    None => "not satisfied".to_owned(),
                };
                println!(
                    "  {:<10} cost {:>12.1}  ratio {:>8.3}  {}",
                    candidate.variant, candidate.primary_cost, candidate.primary_ratio, status
                );
            }
            println!();
        }
        None => fail("no explanation recorded for the list site"),
    }

    runtime.export_metrics(&registry);
    let snapshot = registry.snapshot();

    println!("== prometheus exposition ==");
    let text = snapshot.to_prometheus_text();
    print!("{text}");
    if let Err(errors) = validate_prometheus_text(&text) {
        for error in &errors {
            eprintln!("  {error}");
        }
        fail("Prometheus exposition failed validation");
    }

    // -- Cross-check: sinks, metrics, and the engine log must agree --------
    let log = engine.event_log();
    if vec_sink.len() != log.len() {
        fail(&format!(
            "VecSink saw {} events, engine log holds {}",
            vec_sink.len(),
            log.len()
        ));
    }
    let events_total = snapshot
        .counter_total("cs_events_total")
        .unwrap_or_else(|| fail("cs_events_total missing"));
    if events_total != health.events_recorded {
        fail(&format!(
            "metrics counted {events_total} events, engine recorded {}",
            health.events_recorded
        ));
    }
    let transitions = log
        .iter()
        .filter(|e| e.kind_name() == "transition")
        .count() as u64;
    let rollbacks = log.iter().filter(|e| e.kind_name() == "rollback").count() as u64;
    if transitions == 0 || rollbacks == 0 {
        fail("expected the inverted model to produce a transition and a rollback");
    }
    if snapshot.counter_total("cs_site_transitions_total") != Some(transitions) {
        fail("cs_site_transitions_total diverged from the event log");
    }
    if snapshot.counter_total("cs_site_rollbacks_total") != Some(rollbacks) {
        fail("cs_site_rollbacks_total diverged from the event log");
    }
    jsonl.flush().unwrap_or_else(|e| fail(&e.to_string()));
    if jsonl.lines_written() != log.len() as u64 {
        fail(&format!(
            "JSONL sink wrote {} lines, engine log holds {}",
            jsonl.lines_written(),
            log.len()
        ));
    }

    println!("\n== json snapshot (first 400 chars) ==");
    let json = snapshot.to_json().render();
    println!("{}...", &json[..json.len().min(400)]);
    println!("\naudit trail: {} ({} lines)", audit_path.display(), jsonl.lines_written());
    println!("telemetry_dashboard: OK");
}
