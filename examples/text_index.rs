//! A lusearch-style text indexer: thousands of tiny per-document term maps
//! plus a few large shared indexes, optimized for memory with `R_alloc`.
//!
//! ```text
//! cargo run --release --example text_index
//! ```
//!
//! Demonstrates the paper's headline memory result: under the allocation
//! rule, small maps converge to array/adaptive variants and the peak tracked
//! heap drops versus the JDK-default `HashMap` everywhere.

use collection_switch::collections::HeapSize;
use collection_switch::prelude::*;

/// Tokenizes a pseudo-document into term ids.
fn terms_of(doc: u64, len: usize) -> impl Iterator<Item = i64> {
    (0..len).map(move |i| {
        // Zipf-ish skew: a few hot terms, many rare ones.
        let x = (doc.wrapping_mul(6364136223846793005) ^ (i as u64 * 2654435761)) % 1000;
        (x * x / 1000) as i64
    })
}

/// Indexes documents through an allocation context, returning the peak
/// tracked bytes of the live per-document maps. `tick` runs every 500
/// documents (the deterministic stand-in for the 50 ms analyzer thread).
fn index_documents(ctx: &MapContext<i64, u32>, docs: usize, mut tick: impl FnMut()) -> usize {
    let mut live = std::collections::VecDeque::new();
    let mut live_bytes = 0usize;
    let mut peak = 0usize;
    for doc in 0..docs as u64 {
        if doc % 500 == 0 {
            tick();
        }
        // Per-document term-frequency map: typically < 20 distinct terms.
        let mut tf = ctx.create_map();
        let len = 8 + (doc % 24) as usize;
        for term in terms_of(doc, len) {
            let n = tf.get(&term).copied().unwrap_or(0);
            tf.insert(term, n + 1);
        }
        let bytes = tf.heap_bytes();
        live_bytes += bytes;
        live.push_back((tf, bytes));
        if live.len() > 512 {
            let (_old, old_bytes) = live.pop_front().expect("nonempty");
            live_bytes -= old_bytes;
        }
        peak = peak.max(live_bytes);
    }
    peak
}

fn main() {
    const WARMUP_DOCS: usize = 2_000; // unmeasured, as in the paper's protocol
    const DOCS: usize = 20_000;

    // Baseline: JDK-default HashMap at every site, no adaptation.
    let frozen = Switch::builder().rule(SelectionRule::impossible()).build();
    let baseline_ctx = frozen.named_map_context::<i64, u32>(MapKind::Chained, "tf-baseline");
    index_documents(&baseline_ctx, WARMUP_DOCS, || frozen.analyze_now());
    let baseline_peak = index_documents(&baseline_ctx, DOCS, || frozen.analyze_now());

    // Adaptive: R_alloc (alloc < 0.8, time penalty < 1.2 — paper Table 4).
    let engine = Switch::builder().rule(SelectionRule::r_alloc()).build();
    let ctx = engine.named_map_context::<i64, u32>(MapKind::Chained, "DocIndexer:42");
    index_documents(&ctx, WARMUP_DOCS, || engine.analyze_now());
    let adaptive_peak = index_documents(&ctx, DOCS, || engine.analyze_now());

    println!("documents indexed:        {DOCS}");
    println!("baseline peak (HashMap):  {:.1} KiB", baseline_peak as f64 / 1024.0);
    println!("adaptive peak:            {:.1} KiB", adaptive_peak as f64 / 1024.0);
    println!(
        "saved:                    {:.1}%",
        (1.0 - adaptive_peak as f64 / baseline_peak as f64) * 100.0
    );
    println!("site now instantiates:    {}", ctx.current_kind());
    for event in engine.transition_log() {
        println!("  {event}");
    }

    assert!(
        adaptive_peak < baseline_peak,
        "R_alloc must reduce the tiny-map working set"
    );
}
