//! Runs one synthetic DaCapo-like application (paper §5.2) under all four
//! configurations and prints a miniature Table 5 row.
//!
//! ```text
//! cargo run --release --example dacapo_sim [app] [scale]
//! ```
//!
//! `app` is one of `avrora`, `bloat`, `fop`, `h2`, `lusearch` (default
//! `lusearch`); `scale` multiplies instance counts (default 2).

use collection_switch::core::SelectionRule;
use collection_switch::workloads::{
    apps,
    runner::{run_app, Mode},
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("lusearch");
    let scale: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);

    let app = match name {
        "avrora" => apps::avrora(scale),
        "bloat" => apps::bloat(scale),
        "fop" => apps::fop(scale),
        "h2" => apps::h2(scale),
        "lusearch" => apps::lusearch(scale),
        other => {
            eprintln!("unknown app `{other}`; use avrora|bloat|fop|h2|lusearch");
            std::process::exit(2);
        }
    };

    println!(
        "app {name} (scale {scale}): {} allocation sites, {} instances",
        app.sites.len(),
        app.total_instances()
    );
    println!();
    println!("mode                  | time      | peak collection bytes | transitions");
    for mode in [
        Mode::Original,
        Mode::FullAdap(SelectionRule::r_time()),
        Mode::FullAdap(SelectionRule::r_alloc()),
        Mode::InstanceAdap,
    ] {
        let r = run_app(&app, mode.clone(), 42);
        println!(
            "{:21} | {:8.1?} | {:9.2} MiB        | {}",
            mode.label(),
            r.wall_time,
            r.peak_bytes as f64 / (1024.0 * 1024.0),
            r.transitions.len()
        );
    }

    println!();
    println!("per-site outcome under R_time:");
    let r = run_app(&app, Mode::FullAdap(SelectionRule::r_time()), 42);
    for site in &r.sites {
        println!("  {:28} -> {}", site.name, site.final_kind);
    }
}
