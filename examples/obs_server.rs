//! The live operational plane, end to end: serve a running runtime over
//! HTTP, scrape every endpoint with raw TCP, then force an op-mix phase
//! shift and watch it land as a `phase_shift` incident.
//!
//! ```text
//! cargo run --release --example obs_server
//! ```
//!
//! The script a human would follow with `curl`, automated and asserted:
//!
//! 1. wire a runtime + flight recorder + metrics registry, start
//!    `serve_obs` on an ephemeral port with a *manual* sampler (the
//!    example ticks it deterministically — no timer races),
//! 2. run an insert-heavy phase, ticking the sampler each batch,
//! 3. scrape all five endpoints and validate each one: `/metrics` passes
//!    the exposition validator, `/health` parses and is not degraded,
//!    `/sites` lists the map site, `/explain/<id>` parses via
//!    [`Json::parse`] and carries candidates, `/incidents` has no
//!    `phase_shift` yet,
//! 4. flip the workload read-heavy, tick on — the drift detector must
//!    fire, `cs_obs_phase_shifts_total` must rise, and `/incidents` must
//!    now serve a `phase_shift` incident whose detail names the site and
//!    an op-mix dimension,
//! 5. shut down gracefully and verify the port actually closed.
//!
//! This example is CI's obs-check: it exits nonzero on any violated
//! expectation, so running it IS the validation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use collection_switch::obs::{DriftConfig, ObsBuilder, ObsHandle};
use collection_switch::runtime::ConcurrentMap;
use collection_switch::telemetry::{
    validate_prometheus_text, FlightRecorder, FlightRecorderConfig, Json,
};
use collection_switch::prelude::*;

fn fail(msg: &str) -> ! {
    eprintln!("obs_server: FAIL: {msg}");
    std::process::exit(1);
}

/// A raw-TCP `curl -i`: returns (status, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream =
        TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    write!(stream, "GET {path} HTTP/1.1\r\nHost: obs-example\r\n\r\n")
        .unwrap_or_else(|e| fail(&format!("send GET {path}: {e}")));
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .unwrap_or_else(|e| fail(&format!("read GET {path}: {e}")));
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fail(&format!("no status line in response to {path}")));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn parse_json(path: &str, body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON ({e}): {body}")))
}

/// One workload batch at the given read fraction, flushed and sampled.
fn batch(
    map: &ConcurrentMap<u64, u64>,
    rt: &Runtime,
    obs: &ObsHandle,
    reads_per_100: u64,
    round: u64,
) {
    for i in 0..2_000u64 {
        let key = (round * 2_000 + i) % 512;
        if i % 100 < reads_per_100 {
            std::hint::black_box(map.get(&key));
        } else {
            map.insert(key, i);
        }
    }
    rt.flush_thread();
    obs.tick();
}

fn main() {
    // -- 1. Wire the plane -------------------------------------------------
    let registry = MetricsRegistry::new();
    let stream_path = std::env::temp_dir().join("cs_obs_server.jsonl");
    let jsonl = Arc::new(
        JsonlSink::create(&stream_path, 10_000)
            .unwrap_or_else(|e| fail(&format!("create jsonl sink: {e}"))),
    );
    let recorder = Arc::new(FlightRecorder::new(
        Arc::clone(&jsonl),
        registry.clone(),
        FlightRecorderConfig::default(),
    ));
    let engine = Switch::builder()
        .event_sink(Arc::new(MetricsSink::new(registry.clone())))
        .event_sink(recorder.clone())
        .build();
    recorder.attach(&engine);
    let rt = Runtime::new(engine);
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "phase-map");

    let obs = ObsBuilder::new()
        .addr("127.0.0.1:0")
        .manual_sampler()
        .registry(registry.clone())
        .flight(Arc::clone(&recorder))
        .drift(DriftConfig {
            warmup_frames: 6,
            ..DriftConfig::default()
        })
        .spawn_runtime(&rt)
        .unwrap_or_else(|e| fail(&format!("bind obs server: {e}")));
    let addr = obs.local_addr().unwrap_or_else(|| fail("no local addr"));
    println!("obs_server: serving on http://{addr}/");

    // -- 2. Phase A: insert-heavy, steady ---------------------------------
    for round in 0..10 {
        batch(&map, &rt, &obs, 10, round);
    }
    if obs.phase_shifts() != 0 {
        fail("steady phase A must not fire the drift detector");
    }
    rt.analyze_now();

    // -- 3. Scrape and validate all five endpoints -------------------------
    let (status, body) = get(addr, "/metrics");
    if status != 200 {
        fail(&format!("/metrics answered {status}: {body}"));
    }
    validate_prometheus_text(&body)
        .unwrap_or_else(|e| fail(&format!("/metrics failed validation: {e:?}")));
    if !body.contains("cs_obs_sampler_ticks_total 10") {
        fail("sampler self-metrics missing from /metrics");
    }
    println!("obs_server: /metrics OK ({} bytes, validator-clean)", body.len());

    let (status, body) = get(addr, "/health");
    if status != 200 {
        fail(&format!("/health answered {status}: {body}"));
    }
    let health = parse_json("/health", &body);
    if health.get("degraded").and_then(Json::as_bool) != Some(false) {
        fail(&format!("/health reports degraded: {body}"));
    }
    if health.get("uptime_seconds").and_then(Json::as_f64) <= Some(0.0) {
        fail("/health uptime must be positive");
    }
    println!("obs_server: /health OK (healthy, uptime reported)");

    let (status, body) = get(addr, "/sites");
    if status != 200 {
        fail(&format!("/sites answered {status}"));
    }
    let sites = parse_json("/sites", &body);
    let entries = sites.as_array().unwrap_or_else(|| fail("/sites is not an array"));
    let site = entries
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("phase-map"))
        .unwrap_or_else(|| fail(&format!("phase-map missing from /sites: {body}")));
    let site_id = site
        .get("id")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| fail("/sites entry has no id"));
    println!("obs_server: /sites OK (phase-map is site {site_id})");

    let (status, body) = get(addr, &format!("/explain/{site_id}"));
    if status != 200 {
        fail(&format!("/explain/{site_id} answered {status}: {body}"));
    }
    let explain = parse_json("/explain", &body);
    let candidates = explain
        .get("candidates")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail(&format!("/explain carries no candidates: {body}")));
    if candidates.is_empty() {
        fail("/explain candidates list is empty");
    }
    println!(
        "obs_server: /explain/{site_id} OK ({} candidates, outcome {})",
        candidates.len(),
        explain.get("outcome").and_then(Json::as_str).unwrap_or("?")
    );

    let (status, body) = get(addr, "/incidents");
    if status != 200 {
        fail(&format!("/incidents answered {status}"));
    }
    if body.contains("phase_shift") {
        fail("no phase_shift incident may exist before the flip");
    }

    // -- 4. Phase B: flip read-heavy, expect a phase_shift ------------------
    for round in 10..16 {
        batch(&map, &rt, &obs, 95, round);
    }
    let fired = obs.phase_shifts();
    if fired == 0 {
        fail("read-heavy flip did not fire the drift detector");
    }
    println!("obs_server: drift detector fired {fired} phase-shift event(s)");

    let (_, body) = get(addr, "/metrics");
    if !body.contains("cs_obs_phase_shifts_total{site=\"phase-map\"") {
        fail("cs_obs_phase_shifts_total missing after the flip");
    }

    let (status, body) = get(addr, "/incidents");
    if status != 200 {
        fail(&format!("/incidents answered {status} after the flip"));
    }
    let incident = body
        .lines()
        .map(|line| parse_json("/incidents line", line))
        .find(|doc| doc.get("trigger").and_then(Json::as_str) == Some("phase_shift"))
        .unwrap_or_else(|| fail(&format!("no phase_shift incident served: {body}")));
    let detail = incident
        .get("detail")
        .unwrap_or_else(|| fail("phase_shift incident has no detail"));
    if detail.get("site").and_then(Json::as_str) != Some("phase-map") {
        fail(&format!("incident detail names the wrong site: {body}"));
    }
    let dimension = detail
        .get("dimension")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("incident detail has no dimension"));
    if !dimension.ends_with("_fraction") {
        fail(&format!("an op-mix flip must fire a mix dimension, got {dimension}"));
    }
    println!("obs_server: /incidents OK (phase_shift on {dimension})");

    // -- 5. Graceful shutdown ----------------------------------------------
    obs.shutdown();
    if TcpStream::connect(addr).is_ok() {
        fail("port still accepting after shutdown");
    }
    println!("obs_server: shutdown clean, port closed");
    println!("obs_server: PASS");
}
