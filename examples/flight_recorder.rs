//! Anomaly flight recorder, end to end: force a real rollback and
//! validate the incident record it freezes.
//!
//! ```text
//! cargo run --release --example flight_recorder
//! ```
//!
//! Builds an engine whose list model is inverted (the "better" variant is
//! actually worse), so the first adaptation switch regresses and the
//! verification guardrail rolls it back — a *real* rollback travelling the
//! production path, not an injected event. A [`FlightRecorder`] subscribed
//! to the engine must then dump an incident record into the shared JSONL
//! stream, and this example re-reads the stream and validates it with
//! [`Json::parse`]:
//!
//! * every line in the stream parses (audit events and incidents interleave),
//! * at least one record has `kind: "incident"` with `trigger: "rollback"`,
//! * the incident carries the triggering rollback event, the site's
//!   selection explanation, the tracer's self-overhead account, and a
//!   non-empty span window (tracing runs in sampled mode throughout).
//!
//! This example is CI's flight-recorder check: it exits nonzero on any
//! missing or malformed piece, so running it IS the validation.

use std::sync::Arc;

use collection_switch::core::Models;
use collection_switch::model::{PerformanceModel, Polynomial, VariantCostModel};
use collection_switch::profile::OpKind;
use collection_switch::telemetry::{FlightRecorder, FlightRecorderConfig, Json};
use collection_switch::trace;
use collection_switch::prelude::*;

fn flat_list_model(costs: &[(ListKind, f64)]) -> PerformanceModel<ListKind> {
    let mut model = PerformanceModel::new();
    for &(kind, cost) in costs {
        let mut variant = VariantCostModel::new();
        for op in OpKind::ALL {
            variant.set_op_cost(CostDimension::Time, op, Polynomial::constant(cost));
        }
        model.insert_variant(kind, variant);
    }
    model
}

fn fail(why: &str) -> ! {
    eprintln!("flight_recorder: FAILED: {why}");
    std::process::exit(1);
}

fn expect<'a>(doc: &'a Json, field: &str) -> &'a Json {
    doc.get(field)
        .unwrap_or_else(|| fail(&format!("incident record is missing {field:?}")))
}

fn main() {
    trace::set_mode(TraceMode::Sampled);

    // -- Wire the pipeline -------------------------------------------------
    let registry = MetricsRegistry::new();
    let stream_path = std::env::temp_dir().join("cs_flight_recorder.jsonl");
    let jsonl = Arc::new(
        JsonlSink::create(&stream_path, 10_000).unwrap_or_else(|e| fail(&e.to_string())),
    );
    let recorder = Arc::new(FlightRecorder::new(
        Arc::clone(&jsonl),
        registry.clone(),
        FlightRecorderConfig::default(),
    ));

    // An inverted list model: the engine will switch to the "cheap" linked
    // list, measure a regression, and roll back — the trigger under test.
    let models = Models {
        list: flat_list_model(&[
            (ListKind::Array, 100.0),
            (ListKind::Linked, 1.0),
            (ListKind::HashArray, 10_000.0),
            (ListKind::Adaptive, 10_000.0),
        ]),
        ..Default::default()
    };
    let engine = Switch::builder()
        .models(models)
        .event_sink(Arc::new(MetricsSink::new(registry.clone())))
        .event_sink(jsonl.clone())
        .event_sink(recorder.clone())
        .build();
    recorder.attach(&engine);

    // -- Force the rollback ------------------------------------------------
    let site = engine.named_list_context::<i64>(ListKind::Array, "flight/list");
    for round in 0..6 {
        for _ in 0..60 {
            let mut list = site.create_list();
            for v in 0..1024 {
                list.push(v);
            }
            for v in 0..1024 {
                assert!(list.contains(&v));
            }
        }
        engine.analyze_now();
        if engine
            .event_log()
            .iter()
            .any(|e| e.kind_name() == "rollback")
        {
            println!("rollback provoked after {} round(s)", round + 1);
            break;
        }
    }
    trace::set_mode(TraceMode::Off);

    if !engine.event_log().iter().any(|e| e.kind_name() == "rollback") {
        fail("the inverted model never provoked a rollback");
    }
    if recorder.incidents_recorded() == 0 {
        fail("a rollback happened but the flight recorder wrote no incident");
    }
    jsonl.flush().unwrap_or_else(|e| fail(&e.to_string()));

    // -- Re-read and validate the stream ------------------------------------
    let content =
        std::fs::read_to_string(&stream_path).unwrap_or_else(|e| fail(&e.to_string()));
    let mut incidents = Vec::new();
    for (n, line) in content.lines().enumerate() {
        let doc = Json::parse(line)
            .unwrap_or_else(|e| fail(&format!("line {} is not valid JSON: {e}", n + 1)));
        if doc.get("kind").and_then(Json::as_str) == Some("incident") {
            incidents.push(doc);
        }
    }
    println!(
        "stream: {} lines, {} incident record(s)",
        content.lines().count(),
        incidents.len()
    );

    let incident = incidents
        .iter()
        .find(|d| d.get("trigger").and_then(Json::as_str) == Some("rollback"))
        .unwrap_or_else(|| fail("no incident with trigger \"rollback\" in the stream"));

    // The triggering event rides along, fully serialized.
    let event = expect(incident, "event");
    if event.get("event").and_then(Json::as_str) != Some("rollback") {
        fail("incident's embedded event is not the rollback");
    }
    // The engine back-reference resolved the site's decision audit.
    if expect(incident, "explanation") == &Json::Null {
        fail("incident carries no selection explanation despite an attached engine");
    }
    // The self-overhead account is present and internally consistent.
    let overhead = expect(incident, "overhead");
    for field in ["framework_nanos", "tracer_nanos", "app_nanos", "app_ops", "ratio", "pipeline_ratio"] {
        let _ = expect(overhead, field);
    }
    // Sampled tracing ran throughout, so the span window must not be empty.
    let spans = expect(incident, "spans")
        .as_array()
        .unwrap_or_else(|| fail("incident spans is not an array"));
    if spans.is_empty() {
        fail("incident froze zero spans despite sampled tracing being on");
    }
    for span in spans {
        for field in ["thread", "site", "phase", "depth", "start_ns", "dur_ns"] {
            let _ = expect(span, field);
        }
    }
    // Telemetry snapshot attached (the default config includes it).
    if expect(incident, "telemetry") == &Json::Null {
        fail("incident carries no telemetry snapshot despite include_telemetry");
    }

    println!(
        "incident seq {} validated: trigger=rollback, {} spans frozen",
        expect(incident, "seq").render(),
        spans.len()
    );
    std::fs::remove_file(&stream_path).ok();
    println!("flight_recorder: OK");
}
